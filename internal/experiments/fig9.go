package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"mavfi/internal/detect"
	"mavfi/internal/pipeline"
	"mavfi/internal/platform"
	"mavfi/internal/qof"
)

// PlatformStudy is the Fig. 9 campaign on one compute platform: golden, FI,
// and both protected settings in the Sparse environment.
type PlatformStudy struct {
	Platform platform.Platform
	Golden   *qof.Campaign
	Injected *qof.Campaign
	GAD      *qof.Campaign
	AAD      *qof.Campaign
}

// Fig9Result reproduces Fig. 9: the portability comparison between the
// i9-9940X and the Cortex-A57 (TX2): the spec/QoF table plus fault injection
// and recovery on both platforms.
type Fig9Result struct {
	Studies []*PlatformStudy
}

// Fig9 runs the Sparse campaign on both platform models. Detectors trained
// on the i9 are reused (the detector watches platform-independent state
// dynamics).
func (c *Context) Fig9() *Fig9Result {
	out := &Fig9Result{}
	w := c.World("Sparse")
	for _, p := range []platform.Platform{platform.I9(), platform.TX2()} {
		ps := &PlatformStudy{Platform: p}
		plat := p

		ps.Golden = c.runCell("Golden", func(i int) pipeline.Config {
			return pipeline.Config{World: w, Platform: plat, Seed: c.Seed + int64(i)}
		})

		ctr := c.calibrate(w, plat)
		planRNG := rand.New(rand.NewSource(c.Seed + int64(len(plat.Name))*71))
		plans := c.stagePlans(ctr, planRNG)

		ps.Injected = c.runInjected("Injection", w, plat, plans, nil)
		ps.GAD = c.runInjected("Gaussian", w, plat, plans, func() detect.Detector { return c.GADetector() })
		ps.AAD = c.runInjected("Autoencoder", w, plat, plans, func() detect.Detector { return c.AADetector() })
		out.Studies = append(out.Studies, ps)
	}
	return out
}

// Recovered returns the fraction of the FI-induced worst-case flight-time
// increase a scheme recovers on study s (the paper reports 79.3% Gaussian
// and 88.0% autoencoder on the TX2).
func (s *PlatformStudy) Recovered(camp *qof.Campaign) float64 {
	gMax := s.Golden.FlightTimeSummary().Max
	iMax := s.Injected.FlightTimeSummary().Max
	m := camp.FlightTimeSummary().Max
	if iMax <= gMax {
		return 1
	}
	r := (iMax - m) / (iMax - gMax)
	if r < 0 {
		return 0
	}
	if r > 1 {
		return 1
	}
	return r
}

// String renders the platform spec/QoF table and the recovery summary.
func (f *Fig9Result) String() string {
	var b strings.Builder
	b.WriteString(header("Fig. 9: computing platform comparison (Sparse)"))
	fmt.Fprintf(&b, "%-22s", "")
	for _, s := range f.Studies {
		fmt.Fprintf(&b, "%16s", s.Platform.Name)
	}
	b.WriteByte('\n')
	specRow := func(name string, val func(*PlatformStudy) string) {
		fmt.Fprintf(&b, "%-22s", name)
		for _, s := range f.Studies {
			fmt.Fprintf(&b, "%16s", val(s))
		}
		b.WriteByte('\n')
	}
	specRow("Core number", func(s *PlatformStudy) string { return fmt.Sprintf("%d", s.Platform.Cores) })
	specRow("Core freq (GHz)", func(s *PlatformStudy) string { return fmt.Sprintf("%.1f", s.Platform.FreqGHz) })
	specRow("Power (Watt)", func(s *PlatformStudy) string { return fmt.Sprintf("%.0f", s.Platform.PowerW) })
	specRow("Flight time (s)", func(s *PlatformStudy) string {
		return fmt.Sprintf("%.1f", s.Golden.FlightTimeSummary().Mean)
	})
	specRow("Flight energy (kJ)", func(s *PlatformStudy) string {
		e := s.Golden.Energies()
		if len(e) == 0 {
			return "-"
		}
		sum := 0.0
		for _, x := range e {
			sum += x
		}
		return fmt.Sprintf("%.1f", sum/float64(len(e))/1000)
	})
	b.WriteByte('\n')
	for _, s := range f.Studies {
		gMax := s.Golden.FlightTimeSummary().Max
		iMax := s.Injected.FlightTimeSummary().Max
		fmt.Fprintf(&b, "[%s] worst flight time: golden=%.1fs FI=%.1fs (%.2fx); recovered GAD=%.1f%% AAD=%.1f%%\n",
			s.Platform.Name, gMax, iMax, iMax/gMax,
			s.Recovered(s.GAD)*100, s.Recovered(s.AAD)*100)
	}
	if len(f.Studies) == 2 {
		r := f.Studies[1].Golden.FlightTimeSummary().Mean / f.Studies[0].Golden.FlightTimeSummary().Mean
		fmt.Fprintf(&b, "TX2/i9 mean golden flight-time ratio: %.2fx (paper table: 322s/115s = 2.8x)\n", r)
	}
	return b.String()
}
