package experiments

import (
	"fmt"
	"strings"

	"mavfi/internal/qof"
)

// OverheadRow is one environment's detection/recovery overhead breakdown for
// one scheme, as fractions of total PPC compute time (the paper's Tab. II
// percentages).
type OverheadRow struct {
	Env string
	// Per-stage detection shares (GAD splits its per-tick cost across the
	// stages' monitored states; AAD is a single whole-pipeline detector).
	DetPerception float64
	DetPlanning   float64
	DetControl    float64
	// Per-stage recovery shares.
	RecovPerception float64
	RecovPlanning   float64
	RecovControl    float64
	// Sum is the scheme's total overhead fraction.
	Sum float64
}

// TableIIResult reproduces Tab. II: compute-time overhead of detection and
// recovery per environment for both schemes.
type TableIIResult struct {
	Gaussian    []OverheadRow
	Autoencoder []OverheadRow
}

// monitored-state counts per stage (of the 13 detector inputs): GAD's
// per-stage detection cost splits proportionally.
const (
	perceptionStates = 6.0 / 13.0
	planningStates   = 4.0 / 13.0
	controlStates    = 3.0 / 13.0
)

// TableII computes mean overheads over the Tab. I protected campaigns.
func (c *Context) TableII() *TableIIResult {
	out := &TableIIResult{}
	for _, ec := range c.TableI().Envs {
		out.Gaussian = append(out.Gaussian, overheadRow(ec.Env, ec.GAD, true))
		out.Autoencoder = append(out.Autoencoder, overheadRow(ec.Env, ec.AAD, false))
	}
	return out
}

func overheadRow(envName string, camp *qof.Campaign, splitDet bool) OverheadRow {
	row := OverheadRow{Env: envName}
	n := 0
	for _, m := range camp.Results {
		if m.ComputeS <= 0 {
			continue
		}
		n++
		det := m.DetectS / m.ComputeS
		if splitDet {
			row.DetPerception += det * perceptionStates
			row.DetPlanning += det * planningStates
			row.DetControl += det * controlStates
		} else {
			// AAD is one whole-PPC detector; report it undivided (the
			// paper's single "PPC" row).
			row.DetControl += det
		}
		row.RecovPerception += m.RecoverPerceptionS / m.ComputeS
		row.RecovPlanning += m.RecoverPlanningS / m.ComputeS
		row.RecovControl += m.RecoverControlS / m.ComputeS
	}
	if n > 0 {
		inv := 1 / float64(n)
		row.DetPerception *= inv
		row.DetPlanning *= inv
		row.DetControl *= inv
		row.RecovPerception *= inv
		row.RecovPlanning *= inv
		row.RecovControl *= inv
	}
	row.Sum = row.DetPerception + row.DetPlanning + row.DetControl +
		row.RecovPerception + row.RecovPlanning + row.RecovControl
	return row
}

// String renders the overhead table.
func (t *TableIIResult) String() string {
	var b strings.Builder
	b.WriteString(header("Tab. II: compute-time overhead of detection and recovery"))
	pct := func(x float64) string {
		if x < 1e-6 {
			return "<0.0001%"
		}
		return fmt.Sprintf("%.4f%%", x*100)
	}
	b.WriteString("Gaussian-based:\n")
	fmt.Fprintf(&b, "  %-10s %-12s %-12s %-12s %-12s %-12s %-12s %s\n",
		"Env", "DET(perc)", "RECOV(perc)", "DET(plan)", "RECOV(plan)", "DET(ctrl)", "RECOV(ctrl)", "sum")
	for _, r := range t.Gaussian {
		fmt.Fprintf(&b, "  %-10s %-12s %-12s %-12s %-12s %-12s %-12s %s\n",
			r.Env, pct(r.DetPerception), pct(r.RecovPerception),
			pct(r.DetPlanning), pct(r.RecovPlanning),
			pct(r.DetControl), pct(r.RecovControl), pct(r.Sum))
	}
	b.WriteString("Autoencoder-based (single whole-PPC detector):\n")
	fmt.Fprintf(&b, "  %-10s %-12s %-12s %s\n", "Env", "DET(PPC)", "RECOV(ctrl)", "sum")
	for _, r := range t.Autoencoder {
		fmt.Fprintf(&b, "  %-10s %-12s %-12s %s\n",
			r.Env, pct(r.DetControl), pct(r.RecovControl), pct(r.Sum))
	}
	return b.String()
}

// MaxSum returns the largest total overhead fraction of a scheme's rows
// (the paper reports ≤2.22% Gaussian, ≤0.0062% autoencoder).
func MaxSum(rows []OverheadRow) float64 {
	m := 0.0
	for _, r := range rows {
		if r.Sum > m {
			m = r.Sum
		}
	}
	return m
}
