package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"mavfi/internal/faultinject"
	"mavfi/internal/pipeline"
	"mavfi/internal/qof"
)

// Fig4Result reproduces Fig. 4: end-to-end fault tolerance when corrupting
// individual inter-kernel states in transit — flight time and success rate
// per state, plus the §III-B bit-field sensitivity breakdown.
type Fig4Result struct {
	Golden *qof.Campaign
	// Cells holds one campaign per injectable inter-kernel state.
	Cells []*qof.Campaign
	// ByField aggregates the same runs by the flipped IEEE-754 field.
	ByField map[faultinject.BitField]*qof.Campaign
}

// Fig4 runs the inter-kernel-state corruption campaign in Sparse: Runs
// missions per state, each with a one-time single-bit flip of that state in
// transit.
func (c *Context) Fig4() *Fig4Result {
	w := c.World("Sparse")
	out := &Fig4Result{ByField: map[faultinject.BitField]*qof.Campaign{
		faultinject.FieldSign:     {Name: "sign"},
		faultinject.FieldExponent: {Name: "exponent"},
		faultinject.FieldMantissa: {Name: "mantissa"},
	}}

	out.Golden = c.runCell("Golden", func(i int) pipeline.Config {
		return pipeline.Config{World: w, Platform: c.Platform, Seed: c.Seed + int64(i)}
	})

	nominal := pipeline.NominalDuration(pipeline.Config{World: w, Platform: c.Platform})
	for si := 0; si < int(faultinject.NumInjectableStates); si++ {
		state := faultinject.StateID(si)
		// Pre-draw the cell's injection plans (sequential RNG consumption)
		// so missions shard across workers; the bit-field aggregation zips
		// the mission-ordered results back with their plans.
		planRNG := rand.New(rand.NewSource(c.Seed + int64(si)*211 + 13))
		plans := make([]faultinject.StatePlan, c.Runs)
		for i := range plans {
			plans[i] = faultinject.NewStatePlan(state, nominal*0.15, nominal*0.85, planRNG)
		}
		camp := c.runCell(state.String(), func(i int) pipeline.Config {
			return pipeline.Config{
				World:      w,
				Platform:   c.Platform,
				Seed:       c.Seed + int64(i),
				StateFault: &plans[i],
			}
		})
		for i, m := range camp.Results {
			out.ByField[faultinject.ClassifyBit(plans[i].Bit)].Add(m)
		}
		out.Cells = append(out.Cells, camp)
	}
	return out
}

// String renders the per-state rows and the bit-field aggregation.
func (f *Fig4Result) String() string {
	var b strings.Builder
	b.WriteString(header("Fig. 4: inter-kernel state corruption (Sparse)"))
	fmt.Fprintf(&b, "%s\n", Row(f.Golden))
	for _, cell := range f.Cells {
		fmt.Fprintf(&b, "%s\n", Row(cell))
	}
	b.WriteString(header("§III-B: bit-field sensitivity"))
	for _, field := range []faultinject.BitField{faultinject.FieldSign, faultinject.FieldExponent, faultinject.FieldMantissa} {
		camp := f.ByField[field]
		if camp.N() == 0 {
			continue
		}
		fmt.Fprintf(&b, "%s\n", Row(camp))
	}
	return b.String()
}

// Cell returns the campaign for a named state.
func (f *Fig4Result) Cell(s faultinject.StateID) *qof.Campaign {
	for _, c := range f.Cells {
		if c.Name == s.String() {
			return c
		}
	}
	return nil
}
