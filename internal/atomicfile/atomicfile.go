// Package atomicfile writes small files crash-safely: data lands in a
// temporary file in the destination directory, is fsynced, and is renamed
// over the destination in one atomic step, so a reader (or a process
// recovering after a crash) only ever observes the old contents, the new
// contents, or a stray temp file it can ignore — never a torn write.
//
// This is the persistence discipline the campaign server's job manifests,
// the golden-map seed cache, and the dispatcher's campaign state all ride
// on: their readers (record.ScanDir, server restart recovery, dispatch
// resume) are written to skip foreign files, and atomicfile guarantees the
// files they do read are whole.
package atomicfile

import (
	"os"
	"path/filepath"
)

// TempPattern is the os.CreateTemp pattern suffix every atomic write uses.
// Scanners that enumerate directories (record.ScanDir, restart recovery)
// can rely on mid-write temp files containing ".atomic-" and never carrying
// the destination's exact name.
const TempPattern = ".atomic-*"

// WriteFile writes data to path atomically: temp file in path's directory,
// fsync, rename, then a best-effort fsync of the directory so the rename
// itself survives a crash. On any error the temp file is removed and the
// destination is untouched.
func WriteFile(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+TempPattern)
	if err != nil {
		return err
	}
	tmp := f.Name()
	cleanup := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if _, err := f.Write(data); err != nil {
		return cleanup(err)
	}
	if err := f.Chmod(perm); err != nil {
		return cleanup(err)
	}
	if err := f.Sync(); err != nil {
		return cleanup(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	syncDir(dir)
	return nil
}

// syncDir fsyncs a directory so a just-renamed entry is durable. Best
// effort: some filesystems reject directory fsync, and the rename is still
// atomic without it — crash durability degrades to the filesystem's own
// journaling.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}
