package atomicfile

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "manifest.json")
	want := []byte(`{"hello":"world"}`)
	if err := WriteFile(path, want, 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("contents = %q, want %q", got, want)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Mode().Perm() != 0o644 {
		t.Fatalf("perm = %v, want 0644", fi.Mode().Perm())
	}
}

func TestWriteFileReplacesExisting(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.json")
	if err := WriteFile(path, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(path, []byte("new"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "new" {
		t.Fatalf("contents = %q, want new", got)
	}
}

func TestWriteFileLeavesNoTempOnSuccess(t *testing.T) {
	dir := t.TempDir()
	if err := WriteFile(filepath.Join(dir, "a.json"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".atomic-") {
			t.Fatalf("stray temp file %s left behind", e.Name())
		}
	}
	if len(entries) != 1 {
		t.Fatalf("dir has %d entries, want 1", len(entries))
	}
}

func TestWriteFileMissingDirFails(t *testing.T) {
	dir := t.TempDir()
	err := WriteFile(filepath.Join(dir, "no-such-subdir", "a.json"), []byte("x"), 0o644)
	if err == nil {
		t.Fatal("WriteFile into a missing directory succeeded")
	}
}

// TestTempNameNeverMatchesDestination pins the contract directory scanners
// rely on: an in-flight temp file never carries the destination's exact
// name, so a scan keyed on exact names (job.json, *.rec, *.mapseed) cannot
// read a torn write.
func TestTempNameNeverMatchesDestination(t *testing.T) {
	dir := t.TempDir()
	f, err := os.CreateTemp(dir, "job.json"+TempPattern)
	if err != nil {
		t.Fatal(err)
	}
	defer os.Remove(f.Name())
	defer f.Close()
	base := filepath.Base(f.Name())
	if base == "job.json" {
		t.Fatal("temp file name equals destination name")
	}
	if !strings.Contains(base, ".atomic-") {
		t.Fatalf("temp name %q does not carry the .atomic- marker", base)
	}
	if strings.HasSuffix(base, ".rec") || strings.HasSuffix(base, ".mapseed") || strings.HasSuffix(base, ".json") {
		t.Fatalf("temp name %q ends in a scanned suffix", base)
	}
}
