package ros

import (
	"errors"
	"testing"
)

func TestPubSubImmediate(t *testing.T) {
	g := NewGraph()
	n := g.NewNode("sub")
	topic := OpenTopic[int](g, "/t")
	var got []int
	topic.Subscribe(n, func(v int) { got = append(got, v) })
	topic.Publish(1)
	topic.Publish(2)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("got %v", got)
	}
	if topic.Published() != 2 {
		t.Errorf("Published = %d", topic.Published())
	}
}

func TestFanOutOrder(t *testing.T) {
	g := NewGraph()
	topic := OpenTopic[string](g, "/t")
	var order []string
	for _, name := range []string{"a", "b", "c"} {
		n := g.NewNode(name)
		nm := name
		topic.Subscribe(n, func(string) { order = append(order, nm) })
	}
	topic.Publish("x")
	if len(order) != 3 || order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Errorf("delivery order %v", order)
	}
}

func TestOpenTopicTypeMismatchPanics(t *testing.T) {
	g := NewGraph()
	OpenTopic[int](g, "/t")
	defer func() {
		if recover() == nil {
			t.Error("no panic on type mismatch")
		}
	}()
	OpenTopic[string](g, "/t")
}

func TestDuplicateNodePanics(t *testing.T) {
	g := NewGraph()
	g.NewNode("x")
	defer func() {
		if recover() == nil {
			t.Error("no panic on duplicate node")
		}
	}()
	g.NewNode("x")
}

func TestInterceptorTransformAndDrop(t *testing.T) {
	g := NewGraph()
	n := g.NewNode("sub")
	topic := OpenTopic[int](g, "/t")
	var got []int
	topic.Subscribe(n, func(v int) { got = append(got, v) })

	topic.Intercept(func(v int) (int, bool) { return v * 10, false })
	topic.Intercept(func(v int) (int, bool) { return v + 1, v == 31 }) // drops 3*10+... when v==31

	topic.Publish(1) // → 10 → 11
	topic.Publish(3) // → 30 → dropped? v==31 check happens on 30+1... (drop condition sees input 30? no: ic gets 30, returns 31 with drop 30==31 false)
	if len(got) != 2 || got[0] != 11 || got[1] != 31 {
		t.Errorf("got %v", got)
	}

	topic.ClearInterceptors()
	topic.Intercept(func(v int) (int, bool) { return v, true })
	topic.Publish(5)
	if len(got) != 2 {
		t.Error("dropped message was delivered")
	}
	if topic.Dropped() != 1 {
		t.Errorf("Dropped = %d", topic.Dropped())
	}
}

func TestLatchedTopic(t *testing.T) {
	g := NewGraph()
	topic := OpenTopic[int](g, "/t")
	topic.SetLatched(true)
	topic.Publish(42)
	n := g.NewNode("late")
	var got []int
	topic.Subscribe(n, func(v int) { got = append(got, v) })
	if len(got) != 1 || got[0] != 42 {
		t.Errorf("late subscriber got %v", got)
	}
}

func TestCrashRecoveryAndRestart(t *testing.T) {
	g := NewGraph()
	n := g.NewNode("crashy")
	restarted := 0
	n.OnRestart(func() { restarted++ })
	topic := OpenTopic[int](g, "/t")
	calls := 0
	topic.Subscribe(n, func(v int) {
		calls++
		if v < 0 {
			panic("negative input")
		}
	})
	topic.Publish(1)
	topic.Publish(-1) // crashes; master recovers and restarts
	topic.Publish(2)  // node keeps receiving after restart
	if calls != 3 {
		t.Errorf("calls = %d", calls)
	}
	if n.Restarts() != 1 || restarted != 1 {
		t.Errorf("restarts = %d / hook %d", n.Restarts(), restarted)
	}
	if len(g.CrashLog) != 1 || g.CrashLog[0].Node != "crashy" {
		t.Errorf("crash log %v", g.CrashLog)
	}
}

func TestQueuedModeSpin(t *testing.T) {
	g := NewGraph()
	g.SetMode(Queued)
	n := g.NewNode("sub")
	topic := OpenTopic[int](g, "/t")
	var got []int
	topic.Subscribe(n, func(v int) { got = append(got, v) })

	topic.Publish(1)
	topic.Publish(2)
	if len(got) != 0 {
		t.Error("queued mode delivered immediately")
	}
	if g.PendingDeliveries() != 2 {
		t.Errorf("pending = %d", g.PendingDeliveries())
	}
	if n := g.SpinOnce(); n != 2 {
		t.Errorf("SpinOnce = %d", n)
	}
	if len(got) != 2 {
		t.Errorf("after spin got %v", got)
	}
}

func TestQueuedCascadeNeedsMultipleSpins(t *testing.T) {
	g := NewGraph()
	g.SetMode(Queued)
	a := OpenTopic[int](g, "/a")
	b := OpenTopic[int](g, "/b")
	n1 := g.NewNode("n1")
	n2 := g.NewNode("n2")
	var final []int
	a.Subscribe(n1, func(v int) { b.Publish(v * 2) })
	b.Subscribe(n2, func(v int) { final = append(final, v) })

	a.Publish(3)
	g.SpinOnce() // delivers a→n1, which queues b
	if len(final) != 0 {
		t.Error("cascade delivered in one spin")
	}
	g.SpinOnce()
	if len(final) != 1 || final[0] != 6 {
		t.Errorf("final %v", final)
	}

	// Spin drains everything.
	a.Publish(1)
	total := g.Spin(10)
	if total != 2 || len(final) != 2 {
		t.Errorf("Spin delivered %d, final %v", total, final)
	}
}

func TestQueueOverflowDropsOldest(t *testing.T) {
	g := NewGraph()
	g.SetMode(Queued)
	n := g.NewNode("sub")
	topic := OpenTopic[int](g, "/t")
	var got []int
	topic.SubscribeQueued(n, 2, func(v int) { got = append(got, v) })
	topic.Publish(1)
	topic.Publish(2)
	topic.Publish(3) // overflows: 1 dropped
	g.Spin(10)
	if len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Errorf("got %v", got)
	}
	if topic.Dropped() != 1 {
		t.Errorf("Dropped = %d", topic.Dropped())
	}
}

func TestModeSwitchGuard(t *testing.T) {
	g := NewGraph()
	g.SetMode(Queued)
	n := g.NewNode("sub")
	topic := OpenTopic[int](g, "/t")
	topic.Subscribe(n, func(int) {})
	topic.Publish(1)
	defer func() {
		if recover() == nil {
			t.Error("no panic switching modes with pending messages")
		}
	}()
	g.SetMode(Immediate)
}

func TestServices(t *testing.T) {
	g := NewGraph()
	n := g.NewNode("server")
	svc := RegisterService(n, "/double", func(x int) (int, error) {
		if x < 0 {
			return 0, errors.New("negative")
		}
		return x * 2, nil
	})
	got, err := svc.Call(21)
	if err != nil || got != 42 {
		t.Errorf("Call = %v, %v", got, err)
	}
	if _, err := svc.Call(-1); err == nil {
		t.Error("handler error not propagated")
	}
	if svc.Calls() != 2 {
		t.Errorf("Calls = %d", svc.Calls())
	}

	// Lookup.
	found, err := LookupService[int, int](g, "/double")
	if err != nil || found != svc {
		t.Errorf("lookup: %v, %v", found, err)
	}
	if _, err := LookupService[int, int](g, "/missing"); err == nil {
		t.Error("missing service lookup succeeded")
	}
	if _, err := LookupService[string, string](g, "/double"); err == nil {
		t.Error("mismatched service lookup succeeded")
	}
}

func TestServiceCrash(t *testing.T) {
	g := NewGraph()
	n := g.NewNode("server")
	svc := RegisterService(n, "/boom", func(x int) (int, error) {
		panic("kernel fault")
	})
	_, err := svc.Call(1)
	if !errors.Is(err, ErrServiceCrashed) {
		t.Errorf("err = %v", err)
	}
	if n.Restarts() != 1 {
		t.Errorf("restarts = %d", n.Restarts())
	}
}

func TestGraphIntrospection(t *testing.T) {
	g := NewGraph()
	n := g.NewNode("b")
	g.NewNode("a")
	OpenTopic[int](g, "/z")
	OpenTopic[int](g, "/a")
	RegisterService(n, "/svc", func(x int) (int, error) { return x, nil })

	if nodes := g.Nodes(); len(nodes) != 2 || nodes[0] != "a" || nodes[1] != "b" {
		t.Errorf("Nodes = %v", nodes)
	}
	if topics := g.Topics(); len(topics) != 2 || topics[0] != "/a" {
		t.Errorf("Topics = %v", topics)
	}
	if svcs := g.Services(); len(svcs) != 1 || svcs[0] != "/svc" {
		t.Errorf("Services = %v", svcs)
	}
	if g.Node("a") == nil || g.Node("missing") != nil {
		t.Error("Node lookup wrong")
	}
	// Reopening the same typed topic returns the same instance.
	if OpenTopic[int](g, "/a") != OpenTopic[int](g, "/a") {
		t.Error("OpenTopic not idempotent")
	}
}
