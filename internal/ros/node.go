package ros

import "fmt"

// Node is a participant in the graph, typically hosting one PPC compute
// kernel (the paper's "each ROS node comprises a single compute kernel").
type Node struct {
	name      string
	graph     *Graph
	restarts  int
	onRestart func()
}

// Name returns the node's registered name.
func (n *Node) Name() string { return n.name }

// Graph returns the graph this node belongs to.
func (n *Node) Graph() *Graph { return n.graph }

// Restarts returns how many times the master has restarted this node after
// a crash.
func (n *Node) Restarts() int { return n.restarts }

// OnRestart registers a hook the master invokes after restarting this node,
// used by kernels to reinitialise internal state.
func (n *Node) OnRestart(f func()) { n.onRestart = f }

// guard runs f, converting a panic into a master-recovered crash. It returns
// whether f completed without crashing.
func (n *Node) guard(context string, f func()) (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			n.graph.recordCrash(n, fmt.Sprintf("%s: %v", context, r))
			ok = false
		}
	}()
	f()
	return true
}
