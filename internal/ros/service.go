package ros

import (
	"errors"
	"fmt"
)

// ErrServiceCrashed is returned by Service.Call when the handler panicked;
// the master recovers and restarts the serving node, and the caller decides
// whether to retry — matching ROS service-call failure semantics.
var ErrServiceCrashed = errors.New("ros: service handler crashed")

// Service is a typed one-to-one request/response endpoint (the paper's
// "ROS services (one-to-one communication)").
type Service[Req, Resp any] struct {
	name    string
	graph   *Graph
	node    *Node
	handler func(Req) (Resp, error)
	calls   int
}

// RegisterService creates a service served by node with the given handler.
// Registering a duplicate name panics.
func RegisterService[Req, Resp any](node *Node, name string, handler func(Req) (Resp, error)) *Service[Req, Resp] {
	g := node.graph
	if _, dup := g.services[name]; dup {
		panic(fmt.Sprintf("ros: duplicate service name %q", name))
	}
	s := &Service[Req, Resp]{name: name, graph: g, node: node, handler: handler}
	g.services[name] = s
	return s
}

// LookupService finds a registered service by name, with type checking.
func LookupService[Req, Resp any](g *Graph, name string) (*Service[Req, Resp], error) {
	h, ok := g.services[name]
	if !ok {
		return nil, fmt.Errorf("ros: service %q not found", name)
	}
	s, ok := h.(*Service[Req, Resp])
	if !ok {
		return nil, fmt.Errorf("ros: service %q has mismatched type", name)
	}
	return s, nil
}

// Name returns the service name.
func (s *Service[Req, Resp]) Name() string { return s.name }

func (s *Service[Req, Resp]) serviceName() string { return s.name }

// Calls returns how many calls the service has received.
func (s *Service[Req, Resp]) Calls() int { return s.calls }

// Call invokes the service handler synchronously. A handler panic is
// recovered by the master (restarting the node) and surfaces as
// ErrServiceCrashed.
func (s *Service[Req, Resp]) Call(req Req) (Resp, error) {
	s.calls++
	var resp Resp
	var err error
	ok := s.node.guard("service "+s.name, func() {
		resp, err = s.handler(req)
	})
	if !ok {
		var zero Resp
		return zero, ErrServiceCrashed
	}
	return resp, err
}
