// Package ros implements the in-process middleware substrate the MAVFI
// reproduction runs on. It mirrors the subset of ROS semantics the paper
// relies on:
//
//   - Nodes, each hosting one compute kernel, registered with a master.
//   - Topics: typed one-to-many publish/subscribe channels.
//   - Services: typed one-to-one request/response calls.
//   - A master that detects node crashes (panics during callback dispatch)
//     and restarts the node, matching the paper's observation that "the ROS
//     master node would restart the node automatically if it crashes" —
//     which is why MAVFI focuses on SDCs rather than crashes.
//   - Interceptors: middleware hooks on topics, which is how the MAVFI
//     injector node corrupts inter-kernel states in transit (Fig. 4 mode)
//     and how the anomaly-detection node taps them without modifying the
//     pipeline kernels.
//
// Dispatch is deterministic: Publish in immediate mode runs subscriber
// callbacks synchronously in subscription order; in queued mode messages are
// buffered per subscription and drained by SpinOnce in registration order.
// Determinism is essential for reproducible fault-injection campaigns.
package ros

import (
	"fmt"
	"sort"
)

// DispatchMode selects how published messages reach subscribers.
type DispatchMode int

const (
	// Immediate dispatch invokes subscriber callbacks synchronously inside
	// Publish, like ROS intra-process (nodelet) communication.
	Immediate DispatchMode = iota
	// Queued dispatch buffers messages per subscription; the graph's
	// SpinOnce drains them in deterministic order, like a single-threaded
	// ROS executor.
	Queued
)

// Graph is the ROS computation graph: the master plus all nodes, topics, and
// services. A Graph is not safe for concurrent use; the simulator drives it
// from a single goroutine, which is what makes campaigns reproducible.
type Graph struct {
	mode     DispatchMode
	nodes    map[string]*Node
	order    []*Node // registration order, for deterministic iteration
	topics   map[string]topicHandle
	services map[string]serviceHandle

	// pending holds queued-mode deliveries awaiting SpinOnce.
	pending []func()

	// CrashLog records every node crash the master observed and recovered.
	CrashLog []CrashRecord
}

// CrashRecord describes one node crash the master recovered from.
type CrashRecord struct {
	Node   string
	Reason string
}

type topicHandle interface {
	topicName() string
	messageCount() int
}

type serviceHandle interface {
	serviceName() string
}

// NewGraph creates an empty graph in Immediate dispatch mode.
func NewGraph() *Graph {
	return &Graph{
		mode:     Immediate,
		nodes:    make(map[string]*Node),
		topics:   make(map[string]topicHandle),
		services: make(map[string]serviceHandle),
	}
}

// SetMode switches the dispatch mode. Switching to Immediate with messages
// still pending panics; drain with Spin first.
func (g *Graph) SetMode(m DispatchMode) {
	if m == Immediate && len(g.pending) > 0 {
		panic("ros: cannot switch to Immediate with pending queued messages")
	}
	g.mode = m
}

// Mode returns the current dispatch mode.
func (g *Graph) Mode() DispatchMode { return g.mode }

// NewNode registers a node with the master. Node names must be unique.
func (g *Graph) NewNode(name string) *Node {
	if _, dup := g.nodes[name]; dup {
		panic(fmt.Sprintf("ros: duplicate node name %q", name))
	}
	n := &Node{name: name, graph: g}
	g.nodes[name] = n
	g.order = append(g.order, n)
	return n
}

// Node returns the registered node with the given name, or nil.
func (g *Graph) Node(name string) *Node {
	return g.nodes[name]
}

// Nodes returns all registered node names in sorted order.
func (g *Graph) Nodes() []string {
	names := make([]string, 0, len(g.nodes))
	for name := range g.nodes {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Topics returns all topic names in sorted order.
func (g *Graph) Topics() []string {
	names := make([]string, 0, len(g.topics))
	for name := range g.topics {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Services returns all service names in sorted order.
func (g *Graph) Services() []string {
	names := make([]string, 0, len(g.services))
	for name := range g.services {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// SpinOnce delivers every message queued so far (Queued mode). Messages
// published during delivery are queued for the next SpinOnce, mirroring a
// single executor iteration. It returns the number of deliveries made.
func (g *Graph) SpinOnce() int {
	batch := g.pending
	g.pending = nil
	for _, deliver := range batch {
		deliver()
	}
	return len(batch)
}

// Spin repeatedly calls SpinOnce until no messages remain or maxIters
// iterations have run. It returns the total number of deliveries.
func (g *Graph) Spin(maxIters int) int {
	total := 0
	for i := 0; i < maxIters; i++ {
		n := g.SpinOnce()
		total += n
		if n == 0 {
			break
		}
	}
	return total
}

// PendingDeliveries returns the number of queued deliveries awaiting
// SpinOnce.
func (g *Graph) PendingDeliveries() int { return len(g.pending) }

// recordCrash logs a recovered crash and bumps the node's restart counter,
// implementing the master's automatic node restart.
func (g *Graph) recordCrash(n *Node, reason string) {
	g.CrashLog = append(g.CrashLog, CrashRecord{Node: n.name, Reason: reason})
	n.restarts++
	if n.onRestart != nil {
		n.onRestart()
	}
}
