package ros

import "fmt"

// Topic is a typed one-to-many communication channel. Messages flow through
// the interceptor chain (in registration order) before reaching subscribers.
// Interceptors are how the MAVFI injector corrupts inter-kernel states in
// transit and how the anomaly-detection node observes them.
type Topic[T any] struct {
	name         string
	graph        *Graph
	subs         []subscription[T]
	interceptors []Interceptor[T]
	latched      bool
	last         T
	hasLast      bool
	published    int
	dropped      int
}

// Interceptor transforms (or merely observes) a message in transit. The
// returned message is what downstream interceptors and subscribers see. The
// drop result, when true, suppresses delivery entirely.
type Interceptor[T any] func(msg T) (out T, drop bool)

type subscription[T any] struct {
	node  *Node
	cb    func(T)
	queue []T
	depth int // max queue depth in Queued mode; oldest dropped on overflow
}

// OpenTopic returns the topic with the given name, creating it on first use.
// Opening an existing name with a different message type panics, like a ROS
// type mismatch.
func OpenTopic[T any](g *Graph, name string) *Topic[T] {
	if h, ok := g.topics[name]; ok {
		t, ok := h.(*Topic[T])
		if !ok {
			panic(fmt.Sprintf("ros: topic %q reopened with mismatched type", name))
		}
		return t
	}
	t := &Topic[T]{name: name, graph: g}
	g.topics[name] = t
	return t
}

// SetLatched makes the topic retain its last message and replay it to new
// subscribers, like a latched ROS topic.
func (t *Topic[T]) SetLatched(latched bool) { t.latched = latched }

// Name returns the topic name.
func (t *Topic[T]) Name() string { return t.name }

func (t *Topic[T]) topicName() string { return t.name }

func (t *Topic[T]) messageCount() int { return t.published }

// Published returns how many messages have been published on this topic.
func (t *Topic[T]) Published() int { return t.published }

// Dropped returns how many deliveries were lost to queue overflow or
// interceptor drops.
func (t *Topic[T]) Dropped() int { return t.dropped }

// Subscribe registers cb to receive every message published on the topic.
// The subscribing node is the crash domain: a panic inside cb is recovered
// by the master and counted against node. The default queue depth in Queued
// mode is 16.
func (t *Topic[T]) Subscribe(node *Node, cb func(T)) {
	t.SubscribeQueued(node, 16, cb)
}

// SubscribeQueued is Subscribe with an explicit queue depth for Queued mode.
func (t *Topic[T]) SubscribeQueued(node *Node, depth int, cb func(T)) {
	if depth < 1 {
		depth = 1
	}
	t.subs = append(t.subs, subscription[T]{node: node, cb: cb, depth: depth})
	if t.latched && t.hasLast {
		t.deliver(&t.subs[len(t.subs)-1], t.last)
	}
}

// Intercept appends an interceptor to the topic's chain.
func (t *Topic[T]) Intercept(ic Interceptor[T]) {
	t.interceptors = append(t.interceptors, ic)
}

// ClearInterceptors removes all interceptors, used between campaign runs.
func (t *Topic[T]) ClearInterceptors() { t.interceptors = nil }

// Publish sends msg through the interceptor chain and delivers it to every
// subscriber according to the graph's dispatch mode.
func (t *Topic[T]) Publish(msg T) {
	t.published++
	for _, ic := range t.interceptors {
		var drop bool
		msg, drop = ic(msg)
		if drop {
			t.dropped++
			return
		}
	}
	if t.latched {
		t.last = msg
		t.hasLast = true
	}
	for i := range t.subs {
		t.deliver(&t.subs[i], msg)
	}
}

func (t *Topic[T]) deliver(s *subscription[T], msg T) {
	switch t.graph.mode {
	case Immediate:
		s.node.guard("topic "+t.name, func() { s.cb(msg) })
	case Queued:
		if len(s.queue) >= s.depth {
			// Drop oldest, like a full ROS subscriber queue.
			s.queue = s.queue[1:]
			t.dropped++
		}
		s.queue = append(s.queue, msg)
		sub := s
		t.graph.pending = append(t.graph.pending, func() {
			if len(sub.queue) == 0 {
				return
			}
			m := sub.queue[0]
			sub.queue = sub.queue[1:]
			sub.node.guard("topic "+t.name, func() { sub.cb(m) })
		})
	}
}
