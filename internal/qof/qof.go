// Package qof defines the quality-of-flight metrics MAVFI reports — the
// paper's system-level, application-aware resilience metrics: flight time,
// mission success rate, and mission energy — and aggregation helpers for
// fault-injection campaigns.
package qof

import (
	"fmt"

	"mavfi/internal/stats"
)

// Outcome classifies how a mission ended.
type Outcome int

const (
	// Success: the package-delivery mission completed.
	Success Outcome = iota
	// Crash: the vehicle collided with an obstacle, ground, or boundary.
	Crash
	// Timeout: the mission exceeded its time budget (e.g., stuck
	// replanning or detoured beyond recovery).
	Timeout
	// BatteryOut: the battery was exhausted mid-mission.
	BatteryOut
	// Panicked: the mission function panicked; the campaign engine isolated
	// the panic and recorded this structured outcome (campaign.MissionPanic
	// carries the stack).
	Panicked
	// DeadlineExceeded: the mission exceeded the campaign's per-mission
	// wall-clock deadline and its result was abandoned.
	DeadlineExceeded
)

// NumOutcomes is the number of defined Outcome values, for callers keeping
// per-outcome tallies in a dense array.
const NumOutcomes = int(DeadlineExceeded) + 1

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case Success:
		return "success"
	case Crash:
		return "crash"
	case Timeout:
		return "timeout"
	case BatteryOut:
		return "battery-out"
	case Panicked:
		return "panic"
	case DeadlineExceeded:
		return "deadline-exceeded"
	default:
		return fmt.Sprintf("outcome(%d)", int(o))
	}
}

// Metrics is one mission's QoF record.
type Metrics struct {
	Outcome     Outcome
	FlightTimeS float64
	EnergyJ     float64
	DistanceM   float64

	// Compute-time accounting (simulated seconds), the basis of the
	// overhead table (Tab. II).
	ComputeS           float64 // total PPC kernel compute time
	DetectS            float64 // anomaly detection compute time
	RecoverPerceptionS float64 // recomputation time charged to perception
	RecoverPlanningS   float64
	RecoverControlS    float64

	// Detection/recovery event counts.
	Alarms     int
	Recomputes int

	// Fault-response timing (0 = never): when the mission's fault fired and
	// when the detector first alarmed, the pair behind campaign
	// detection-latency aggregates. Mission clocks start at one tick > 0,
	// so 0 is unambiguous.
	InjectedAtS float64
	FirstAlarmS float64
}

// DetectionLatencyS returns the injection-to-first-alarm latency, or ok =
// false when the mission had no fired fault or no alarm (or alarmed only
// before the fault, a false positive).
func (m Metrics) DetectionLatencyS() (float64, bool) {
	if m.InjectedAtS <= 0 || m.FirstAlarmS <= 0 || m.FirstAlarmS < m.InjectedAtS {
		return 0, false
	}
	return m.FirstAlarmS - m.InjectedAtS, true
}

// Succeeded reports mission success.
func (m Metrics) Succeeded() bool { return m.Outcome == Success }

// RecoverS returns total recovery compute time.
func (m Metrics) RecoverS() float64 {
	return m.RecoverPerceptionS + m.RecoverPlanningS + m.RecoverControlS
}

// OverheadFrac returns the detection+recovery share of total compute time
// (the paper's Tab. II percentages).
func (m Metrics) OverheadFrac() float64 {
	if m.ComputeS <= 0 {
		return 0
	}
	return (m.DetectS + m.RecoverS()) / m.ComputeS
}

// Campaign aggregates the metrics of a set of missions run under one
// configuration.
type Campaign struct {
	Name    string
	Results []Metrics
}

// Add appends one mission result.
func (c *Campaign) Add(m Metrics) { c.Results = append(c.Results, m) }

// Merge folds another campaign shard into c, as if every one of o's missions
// had been Added here. All campaign statistics (N, SuccessRate, the
// flight-time and energy populations and their summaries) are functions of
// the result multiset, so the merge order of shards does not affect them —
// parallel workers can each build a shard and merge in completion order.
func (c *Campaign) Merge(o *Campaign) {
	if o == nil {
		return
	}
	c.Results = append(c.Results, o.Results...)
}

// N returns the number of missions recorded.
func (c *Campaign) N() int { return len(c.Results) }

// SuccessRate returns the fraction of successful missions.
func (c *Campaign) SuccessRate() float64 {
	if len(c.Results) == 0 {
		return 0
	}
	n := 0
	for _, m := range c.Results {
		if m.Succeeded() {
			n++
		}
	}
	return float64(n) / float64(len(c.Results))
}

// CountOutcome returns the number of missions that ended with outcome o.
func (c *Campaign) CountOutcome(o Outcome) int {
	n := 0
	for _, m := range c.Results {
		if m.Outcome == o {
			n++
		}
	}
	return n
}

// MeanDetectionLatencyS averages detection latency over the missions where
// it is defined (fault fired and an alarm followed); ok is false when none.
func (c *Campaign) MeanDetectionLatencyS() (float64, bool) {
	sum, n := 0.0, 0
	for _, m := range c.Results {
		if lat, ok := m.DetectionLatencyS(); ok {
			sum += lat
			n++
		}
	}
	if n == 0 {
		return 0, false
	}
	return sum / float64(n), true
}

// FlightTimes returns the flight times of successful missions only, the
// population the paper's flight-time figures plot.
func (c *Campaign) FlightTimes() []float64 {
	var out []float64
	for _, m := range c.Results {
		if m.Succeeded() {
			out = append(out, m.FlightTimeS)
		}
	}
	return out
}

// Energies returns mission energies of successful missions in joules.
func (c *Campaign) Energies() []float64 {
	var out []float64
	for _, m := range c.Results {
		if m.Succeeded() {
			out = append(out, m.EnergyJ)
		}
	}
	return out
}

// FlightTimeSummary summarises successful-mission flight times.
func (c *Campaign) FlightTimeSummary() stats.Summary {
	return stats.Summarize(c.FlightTimes())
}

// MeanOverheadFrac averages the per-mission overhead fraction.
func (c *Campaign) MeanOverheadFrac() float64 {
	if len(c.Results) == 0 {
		return 0
	}
	sum := 0.0
	for _, m := range c.Results {
		sum += m.OverheadFrac()
	}
	return sum / float64(len(c.Results))
}

// RecoveredFraction computes the paper's "recovered failure cases" metric:
// given the golden success rate, the injected (unprotected) rate, and this
// campaign's protected rate, it returns the fraction of injection-induced
// failures the scheme recovered (1.0 = fully recovered to golden; 0 = none).
func RecoveredFraction(golden, injected, protected float64) float64 {
	lost := golden - injected
	if lost <= 0 {
		return 1
	}
	rec := (protected - injected) / lost
	if rec < 0 {
		return 0
	}
	if rec > 1 {
		return 1
	}
	return rec
}
