package qof

import (
	"math"
	"math/rand"
	"testing"
)

func TestOutcomeStrings(t *testing.T) {
	for o, want := range map[Outcome]string{
		Success: "success", Crash: "crash", Timeout: "timeout", BatteryOut: "battery-out",
	} {
		if o.String() != want {
			t.Errorf("String(%d) = %s", o, o.String())
		}
	}
	if !(Metrics{Outcome: Success}).Succeeded() || (Metrics{Outcome: Crash}).Succeeded() {
		t.Error("Succeeded wrong")
	}
}

func TestOverheadFrac(t *testing.T) {
	m := Metrics{
		ComputeS:           10,
		DetectS:            0.1,
		RecoverPerceptionS: 0.5,
		RecoverPlanningS:   0.3,
		RecoverControlS:    0.1,
	}
	if got := m.RecoverS(); math.Abs(got-0.9) > 1e-12 {
		t.Errorf("RecoverS = %v", got)
	}
	if got := m.OverheadFrac(); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("OverheadFrac = %v", got)
	}
	if (Metrics{}).OverheadFrac() != 0 {
		t.Error("zero-compute overhead not 0")
	}
}

func TestCampaignAggregation(t *testing.T) {
	c := &Campaign{Name: "test"}
	c.Add(Metrics{Outcome: Success, FlightTimeS: 10, EnergyJ: 100})
	c.Add(Metrics{Outcome: Success, FlightTimeS: 20, EnergyJ: 200})
	c.Add(Metrics{Outcome: Crash, FlightTimeS: 5, EnergyJ: 50})
	c.Add(Metrics{Outcome: Timeout, FlightTimeS: 300, EnergyJ: 999})

	if c.N() != 4 {
		t.Errorf("N = %d", c.N())
	}
	if got := c.SuccessRate(); got != 0.5 {
		t.Errorf("SuccessRate = %v", got)
	}
	// Flight times and energies come from successful runs only.
	ft := c.FlightTimes()
	if len(ft) != 2 || ft[0] != 10 || ft[1] != 20 {
		t.Errorf("FlightTimes = %v", ft)
	}
	es := c.Energies()
	if len(es) != 2 || es[0] != 100 {
		t.Errorf("Energies = %v", es)
	}
	s := c.FlightTimeSummary()
	if s.N != 2 || s.Min != 10 || s.Max != 20 {
		t.Errorf("Summary = %+v", s)
	}
	// Empty campaign.
	e := &Campaign{}
	if e.SuccessRate() != 0 || e.MeanOverheadFrac() != 0 {
		t.Error("empty campaign aggregates non-zero")
	}
}

func TestMeanOverheadFrac(t *testing.T) {
	c := &Campaign{}
	c.Add(Metrics{ComputeS: 10, DetectS: 1})          // 10%
	c.Add(Metrics{ComputeS: 10, RecoverPlanningS: 2}) // 20%
	if got := c.MeanOverheadFrac(); math.Abs(got-0.15) > 1e-12 {
		t.Errorf("MeanOverheadFrac = %v", got)
	}
}

func TestRecoveredFraction(t *testing.T) {
	cases := []struct {
		golden, injected, protected, want float64
	}{
		{1.0, 0.8, 1.0, 1.0},   // fully recovered
		{1.0, 0.8, 0.9, 0.5},   // half recovered
		{1.0, 0.8, 0.8, 0.0},   // nothing recovered
		{1.0, 0.8, 0.7, 0.0},   // protection made it worse → clamp 0
		{1.0, 0.8, 1.1, 1.0},   // better than golden → clamp 1
		{0.9, 0.95, 0.99, 1.0}, // injection didn't hurt → trivially recovered
	}
	for _, cse := range cases {
		if got := RecoveredFraction(cse.golden, cse.injected, cse.protected); math.Abs(got-cse.want) > 1e-12 {
			t.Errorf("RecoveredFraction(%v,%v,%v) = %v, want %v",
				cse.golden, cse.injected, cse.protected, got, cse.want)
		}
	}
}

func TestCampaignMergeOrderIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	// Build shards of random sizes with random mission outcomes.
	shards := make([]*Campaign, 7)
	for s := range shards {
		shards[s] = &Campaign{Name: "shard"}
		for i := 0; i < 5+rng.Intn(20); i++ {
			m := Metrics{
				FlightTimeS: 50 + rng.Float64()*200,
				EnergyJ:     rng.Float64() * 1e5,
				ComputeS:    1 + rng.Float64(),
				DetectS:     rng.Float64() * 0.1,
			}
			if rng.Float64() < 0.3 {
				m.Outcome = Outcome(1 + rng.Intn(3))
			}
			shards[s].Add(m)
		}
	}
	merge := func(order []int) *Campaign {
		c := &Campaign{Name: "merged"}
		for _, s := range order {
			c.Merge(shards[s])
		}
		return c
	}
	ref := merge([]int{0, 1, 2, 3, 4, 5, 6})
	for trial := 0; trial < 20; trial++ {
		order := rng.Perm(len(shards))
		got := merge(order)
		if got.N() != ref.N() {
			t.Fatalf("order %v: n=%d want %d", order, got.N(), ref.N())
		}
		if got.SuccessRate() != ref.SuccessRate() {
			t.Errorf("order %v: success %v want %v", order, got.SuccessRate(), ref.SuccessRate())
		}
		// Summaries compute over the sorted population: exactly equal.
		if got.FlightTimeSummary() != ref.FlightTimeSummary() {
			t.Errorf("order %v: flight-time summary differs", order)
		}
		// Mean overhead sums floats in result order; equal up to
		// reassociation.
		if math.Abs(got.MeanOverheadFrac()-ref.MeanOverheadFrac()) > 1e-12 {
			t.Errorf("order %v: overhead %v want %v", order, got.MeanOverheadFrac(), ref.MeanOverheadFrac())
		}
	}
	// Merging nil or empty shards is a no-op.
	before := ref.N()
	ref.Merge(nil)
	ref.Merge(&Campaign{})
	if ref.N() != before {
		t.Errorf("nil/empty merge changed n to %d", ref.N())
	}
}
