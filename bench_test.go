// Package main_test is the benchmark harness: one benchmark per table and
// figure of the paper's evaluation, plus the ablation benches DESIGN.md
// commits to. Each benchmark runs a scaled-down campaign per iteration
// (override the scale with MAVFI_BENCH_RUNS) and reports the experiment's
// headline quantity as a custom metric, so
//
//	go test -bench=. -benchmem
//
// regenerates every result row. Paper-scale numbers come from
// cmd/mavfi-experiments with -runs 100.
package main_test

import (
	"context"
	"fmt"
	"os"
	"strconv"
	"testing"

	"mavfi/internal/campaign"
	"mavfi/internal/experiments"
	"mavfi/internal/pipeline"
	"mavfi/internal/qof"
)

// benchOpts returns the campaign scale for benchmarks: small enough to
// iterate, large enough that direction is meaningful.
func benchOpts() experiments.Opts {
	o := experiments.PaperOpts()
	o.Runs = 8
	o.TrainEnvs = 10
	o.AAD.Epochs = 10
	if s := os.Getenv("MAVFI_BENCH_RUNS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			o.Runs = n
		}
	}
	return o
}

// BenchmarkMission is the base unit: one golden closed-loop mission in
// Sparse (the cost every campaign cell pays per run).
func BenchmarkMission(b *testing.B) {
	ctx := experiments.NewContext(benchOpts())
	w := ctx.World("Sparse")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := pipeline.RunMission(pipeline.Config{World: w, Seed: int64(i)})
		if res.Outcome != qof.Success && res.Outcome != qof.Crash && res.Outcome != qof.Timeout {
			b.Fatal("implausible outcome")
		}
	}
}

// BenchmarkCampaignRunnerScaling runs one fixed golden campaign through the
// parallel engine at increasing worker counts. On an N-core host the
// per-iteration time should fall roughly N-fold from workers=1 to
// workers=N; the reported success rate is identical at every width
// (bit-identical results are the engine's core guarantee).
func BenchmarkCampaignRunnerScaling(b *testing.B) {
	o := benchOpts()
	ctx := experiments.NewContext(o)
	w := ctx.World("Sparse")
	n := 2 * o.Runs
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			r := campaign.New(campaign.WithWorkers(workers))
			for i := 0; i < b.N; i++ {
				out, err := r.Run(context.Background(), "scaling", n, func(j int) qof.Metrics {
					seed := campaign.MissionSeed(1, j)
					return pipeline.RunMission(pipeline.Config{World: w, Seed: seed}).Metrics
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(out.Campaign.SuccessRate()*100, "success%")
			}
		})
	}
}

// BenchmarkFig3 regenerates Fig. 3: per-kernel fault injection in Sparse.
func BenchmarkFig3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ctx := experiments.NewContext(benchOpts())
		f := ctx.Fig3()
		b.ReportMetric(f.WorstCaseIncrease()*100, "worstΔt%")
		b.ReportMetric(f.SuccessDrop()*100, "Δsuccess%")
	}
}

// BenchmarkFig4 regenerates Fig. 4: inter-kernel state corruption.
func BenchmarkFig4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ctx := experiments.NewContext(benchOpts())
		f := ctx.Fig4()
		g := f.Golden.FlightTimeSummary().Max
		worst := 0.0
		for _, cell := range f.Cells {
			if m := cell.FlightTimeSummary().Max; g > 0 && m/g-1 > worst {
				worst = m/g - 1
			}
		}
		b.ReportMetric(worst*100, "worstΔt%")
	}
}

// BenchmarkBitField regenerates the §III-B bit-field sensitivity analysis
// (sign/exponent vs mantissa impact).
func BenchmarkBitField(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ctx := experiments.NewContext(benchOpts())
		f := ctx.Fig4()
		var mantissa, signExp float64
		for field, camp := range f.ByField {
			s := camp.FlightTimeSummary()
			if field.String() == "mantissa" {
				mantissa = s.Max
			} else if s.Max > signExp {
				signExp = s.Max
			}
		}
		if mantissa > 0 {
			b.ReportMetric(signExp/mantissa, "signExp/mantissa-worst")
		}
	}
}

// BenchmarkTableI regenerates Tab. I: success rates across the four
// environments under golden/FI/GAD/AAD.
func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ctx := experiments.NewContext(benchOpts())
		tab := ctx.TableI()
		worstRecovGAD, worstRecovAAD := 1.0, 1.0
		for _, ec := range tab.Envs {
			g, inj := ec.Golden.SuccessRate(), ec.Injected.SuccessRate()
			if r := qof.RecoveredFraction(g, inj, ec.GAD.SuccessRate()); r < worstRecovGAD {
				worstRecovGAD = r
			}
			if r := qof.RecoveredFraction(g, inj, ec.AAD.SuccessRate()); r < worstRecovAAD {
				worstRecovAAD = r
			}
		}
		b.ReportMetric(worstRecovGAD*100, "GAD-recov%")
		b.ReportMetric(worstRecovAAD*100, "AAD-recov%")
	}
}

// BenchmarkFig6 regenerates Fig. 6: flight-time distribution recovery.
func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ctx := experiments.NewContext(benchOpts())
		f := ctx.Fig6()
		// Report the Sparse worst-case flight-time recovery fractions.
		ec := f.Envs[2]
		gMax := ec.Golden.FlightTimeSummary().Max
		iMax := ec.Injected.FlightTimeSummary().Max
		if iMax > gMax {
			rec := func(c *qof.Campaign) float64 {
				return (iMax - c.FlightTimeSummary().Max) / (iMax - gMax) * 100
			}
			b.ReportMetric(rec(ec.GAD), "GAD-recov%")
			b.ReportMetric(rec(ec.AAD), "AAD-recov%")
		}
	}
}

// BenchmarkFig7 regenerates Fig. 7: trajectory analysis in Dense.
func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ctx := experiments.NewContext(benchOpts())
		f := ctx.Fig7()
		if len(f.Cases) > 0 {
			cs := f.Cases[0]
			b.ReportMetric((cs.FaultyS/cs.GoldenS-1)*100, "faultΔt%")
			b.ReportMetric((cs.RecoveredS/cs.GoldenS-1)*100, "recovΔt%")
		}
	}
}

// BenchmarkTableII regenerates Tab. II: detection/recovery compute overhead.
func BenchmarkTableII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ctx := experiments.NewContext(benchOpts())
		tab := ctx.TableII()
		b.ReportMetric(experiments.MaxSum(tab.Gaussian)*100, "GAD-ovh%")
		b.ReportMetric(experiments.MaxSum(tab.Autoencoder)*100, "AAD-ovh%")
	}
}

// BenchmarkFig8 regenerates Fig. 8: DMR/TMR vs anomaly D&R on two airframes.
func BenchmarkFig8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ctx := experiments.NewContext(benchOpts())
		f := ctx.Fig8()
		b.ReportMetric(f.Ratio("AirSim UAV"), "airsim-TMR-x")
		b.ReportMetric(f.Ratio("DJI Spark"), "spark-TMR-x")
	}
}

// BenchmarkFig9 regenerates Fig. 9: the i9 vs TX2 platform comparison.
func BenchmarkFig9(b *testing.B) {
	o := benchOpts()
	o.Runs = 4 // TX2 missions are long; keep the bench tractable
	for i := 0; i < b.N; i++ {
		ctx := experiments.NewContext(o)
		f := ctx.Fig9()
		mi9 := f.Studies[0].Golden.FlightTimeSummary().Mean
		mtx2 := f.Studies[1].Golden.FlightTimeSummary().Mean
		if mi9 > 0 {
			b.ReportMetric(mtx2/mi9, "tx2/i9-x")
		}
	}
}

// BenchmarkAblationSigma sweeps GAD's n-sigma threshold.
func BenchmarkAblationSigma(b *testing.B) {
	o := benchOpts()
	o.Runs = 4
	for i := 0; i < b.N; i++ {
		ctx := experiments.NewContext(o)
		res := ctx.AblationSigma()
		// Report the FP spread across the sweep.
		b.ReportMetric(res.Cells[0].GoldenFPs, "FP@n2")
		b.ReportMetric(res.Cells[len(res.Cells)-1].GoldenFPs, "FP@n6")
	}
}

// BenchmarkAblationPreprocess compares the sign+exponent transform against
// raw-value deltas.
func BenchmarkAblationPreprocess(b *testing.B) {
	o := benchOpts()
	o.Runs = 4
	for i := 0; i < b.N; i++ {
		ctx := experiments.NewContext(o)
		res := ctx.AblationPreprocess()
		b.ReportMetric(res.Cells[0].WorstTimeS, "signexp-worst-s")
		b.ReportMetric(res.Cells[1].WorstTimeS, "raw-worst-s")
	}
}

// BenchmarkAblationBottleneck sweeps the autoencoder bottleneck width.
func BenchmarkAblationBottleneck(b *testing.B) {
	o := benchOpts()
	o.Runs = 4
	for i := 0; i < b.N; i++ {
		ctx := experiments.NewContext(o)
		res := ctx.AblationBottleneck()
		for _, cell := range res.Cells {
			_ = cell
		}
		b.ReportMetric(res.Cells[2].SuccessRate*100, "paper-bn3-success%")
	}
}

// BenchmarkAblationRecovery compares per-stage against control-only
// recovery scopes.
func BenchmarkAblationRecovery(b *testing.B) {
	o := benchOpts()
	o.Runs = 4
	for i := 0; i < b.N; i++ {
		ctx := experiments.NewContext(o)
		res := ctx.AblationRecovery()
		b.ReportMetric(res.Cells[0].OverheadPct*100, "perstage-ovh%")
		b.ReportMetric(res.Cells[1].OverheadPct*100, "ctrlonly-ovh%")
	}
}

// BenchmarkAblationAADScope compares the paper's single shared autoencoder
// against the GAD-style per-stage alternative routed through control-only
// recovery (§IV-D's rationale for one detector).
func BenchmarkAblationAADScope(b *testing.B) {
	o := benchOpts()
	o.Runs = 4
	for i := 0; i < b.N; i++ {
		ctx := experiments.NewContext(o)
		res := ctx.AblationRecovery()
		// Cells: GAD per-stage, AAD control-only, GAD→control-only.
		b.ReportMetric(res.Cells[1].SuccessRate*100, "sharedAAD-success%")
		b.ReportMetric(res.Cells[2].SuccessRate*100, "perstage-ctrlonly-success%")
	}
}
